package faultpoint

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedIsFree(t *testing.T) {
	t.Cleanup(Reset)
	if err := Hit("never/armed"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
}

func TestArmFiresAndCountsDown(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Arm("a/b", 2, func() error { return boom })
	if err := Hit("a/b"); err != boom {
		t.Fatalf("first hit = %v, want boom", err)
	}
	if got := Hits("a/b"); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if err := Hit("a/b"); err != boom {
		t.Fatalf("second hit = %v, want boom", err)
	}
	// Exhausted after 2 fires: disarmed.
	if err := Hit("a/b"); err != nil {
		t.Fatalf("exhausted point still fires: %v", err)
	}
	if got := Hits("a/b"); got != 0 {
		t.Fatalf("hits after self-disarm = %d, want 0", got)
	}
}

func TestUnlimitedAndDisarm(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Arm("x/y", 0, func() error { return boom })
	for i := 0; i < 5; i++ {
		if err := Hit("x/y"); err != boom {
			t.Fatalf("hit %d = %v", i, err)
		}
	}
	Disarm("x/y")
	if err := Hit("x/y"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p/q", 1, func() error { panic("injected") })
	defer func() {
		if r := recover(); r != "injected" {
			t.Fatalf("recover = %v, want injected", r)
		}
		// Self-disarmed before panicking: the next hit is clean.
		if err := Hit("p/q"); err != nil {
			t.Fatalf("point still armed after one-shot panic: %v", err)
		}
	}()
	Hit("p/q")
}

func TestResetClearsAll(t *testing.T) {
	t.Cleanup(Reset)
	Arm("r/1", 0, func() error { return errors.New("e") })
	Arm("r/2", 0, func() error { return errors.New("e") })
	Reset()
	if Hit("r/1") != nil || Hit("r/2") != nil {
		t.Fatal("Reset left a point armed")
	}
}

// TestConcurrentHits: Hit is safe under concurrent use (the chaos tests
// run under -race with multiple workers hitting the same seams).
func TestConcurrentHits(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Arm("c/c", 100, func() error { return boom })
	var wg sync.WaitGroup
	fired := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if Hit("c/c") != nil {
					fired[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range fired {
		total += n
	}
	if total != 100 {
		t.Fatalf("fired %d times across workers, want exactly 100", total)
	}
}
