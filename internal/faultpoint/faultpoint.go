// Package faultpoint provides named, test-armable fault injection points
// for chaos testing. Production code marks its failure-prone seams with
// Hit("pkg/seam"); a disarmed point costs one atomic load and returns
// nil, so the instrumentation is free in normal operation. Tests arm a
// point with a function that returns an error (a simulated failure) or
// panics (a simulated crash-in-flight), optionally limited to the first
// n hits, and assert the system degrades the way its robustness story
// promises.
//
// Point names are plain strings, prefixed by the package that hosts the
// seam ("service/journal-write", "vectorgen/sample-batch"), so a test can
// target a layer without importing its internals.
package faultpoint

import (
	"sync"
	"sync/atomic"
)

// armed counts currently armed points; the Hit fast path is a single
// atomic load when nothing is armed.
var armed atomic.Int32

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

type point struct {
	fn        func() error
	remaining int // fires left; < 0 = unlimited
	hits      int // times fired
}

// Arm installs fn at the named point. The fault fires on the first n
// Hit calls (n <= 0 = every hit) and then disarms itself; fn may return
// an error or panic. Re-arming a name replaces the previous fault.
func Arm(name string, n int, fn func() error) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	if n <= 0 {
		n = -1
	}
	points[name] = &point{fn: fn, remaining: n}
}

// Disarm removes the named point; no-op when not armed.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every point. Tests call it in cleanup so armed faults
// never leak across test cases.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
}

// Hit triggers the named point: it returns nil when the point is
// disarmed (the overwhelmingly common case, one atomic load) and
// otherwise invokes the armed function, which may return a simulated
// error or panic. The armed function runs outside the package lock, so
// it may call back into faultpoint.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.remaining > 0 {
		p.remaining--
		if p.remaining == 0 {
			delete(points, name)
			armed.Add(-1)
		}
	}
	fn := p.fn
	mu.Unlock()
	return fn()
}

// Hits reports how many times the named point has fired since it was
// last armed, or 0 once it has disarmed itself (a disarmed point keeps
// no state; capture counts inside the armed function when a test needs
// them after self-disarm).
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}
