// Constrained maximum power (the paper's Category I.2): when the input
// space is restricted by a transition-probability specification, the
// maximum power question changes — a bus that almost never toggles cannot
// reach the unconstrained worst case. This example estimates the maximum
// power of C2670 under three specifications:
//
//  1. every input toggles with probability 0.7 (the paper's Table 3),
//  2. every input toggles with probability 0.3 (Table 4),
//  3. a mixed spec: a hot control group toggling together, a quiet data
//     bus, and defaults elsewhere (joint transition probabilities).
//
// It also reports how much tighter the constrained maxima are than the
// unconstrained population's.
package main

import (
	"fmt"
	"log"

	"repro/internal/delay"
	"repro/internal/power"
	"repro/internal/vectorgen"
	"repro/maxpower"
)

func main() {
	const size = 8000
	c, err := maxpower.Circuit("C2670")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d inputs\n\n", c.Name, c.NumInputs())

	type scenario struct {
		label string
		pop   *maxpower.Population
	}
	var scenarios []scenario

	// Unconstrained reference population.
	unconstrained, err := maxpower.BuildPopulation(c, maxpower.PopulationSpec{
		Kind: maxpower.PopHighActivity, Size: size, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	scenarios = append(scenarios, scenario{"unconstrained (activity ≥ 0.3)", unconstrained})

	// Uniform constrained populations, Tables 3 and 4 style.
	for _, act := range []float64{0.7, 0.3} {
		pop, err := maxpower.BuildPopulation(c, maxpower.PopulationSpec{
			Kind: maxpower.PopConstrained, Activity: act, Size: size, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		scenarios = append(scenarios, scenario{fmt.Sprintf("constrained, activity %.1f", act), pop})
	}

	// Joint-transition spec: inputs 0–15 are a control group that toggles
	// together 80% of cycles; inputs 16–79 are a quiet bus (5%); the rest
	// default to 30%.
	group := make([]int, 16)
	for i := range group {
		group[i] = i
	}
	quiet := make([]int, 64)
	for i := range quiet {
		quiet[i] = 16 + i
	}
	gen := vectorgen.Grouped{
		N:       c.NumInputs(),
		Groups:  [][]int{group, quiet},
		Probs:   []float64{0.8, 0.05},
		Default: 0.3,
	}
	if err := gen.Validate(); err != nil {
		log.Fatal(err)
	}
	eval := power.NewEvaluator(c, delay.FanoutLoaded{}, power.Params{})
	jointPop, err := vectorgen.Build(eval, gen, vectorgen.Options{Size: size, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	scenarios = append(scenarios, scenario{"joint spec (hot ctrl grp, quiet bus)", jointPop})

	ref := unconstrained.TrueMax()
	fmt.Printf("%-38s %10s %10s %9s %7s %7s\n",
		"population", "mean mW", "max mW", "estimate", "err", "units")
	for _, s := range scenarios {
		res, err := maxpower.Estimate(s.pop, maxpower.EstimateOptions{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s %10.3f %10.3f %9.3f %+6.1f%% %7d\n",
			s.label, s.pop.MeanPower(), s.pop.TrueMax(), res.Estimate,
			100*(res.Estimate-s.pop.TrueMax())/s.pop.TrueMax(), res.Units)
	}
	fmt.Printf("\nthe 0.3-activity constrained maximum is %.0f%% of the unconstrained maximum —\n",
		100*scenarios[2].pop.TrueMax()/ref)
	fmt.Println("sizing the power grid to the unconstrained estimate would be over-design")
	fmt.Println("when the input space is known to be constrained (the paper's Category I.2).")
}
