// Quickstart: estimate the maximum cycle power of a benchmark circuit in
// a dozen lines. Builds a finite high-activity vector-pair population for
// C3540 (the paper's running example), runs the extreme-order-statistics
// estimator at the paper's settings (n=30, m=10, ε=5%, 90% confidence),
// and compares against the population's exhaustively simulated maximum.
package main

import (
	"fmt"
	"log"

	"repro/maxpower"
)

func main() {
	c, err := maxpower.Circuit("C3540")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d inputs, %d gates\n", c.Name, c.NumInputs(), c.NumLogicGates())

	// |V| = 10,000 keeps the quickstart fast; the paper uses 160,000.
	pop, err := maxpower.BuildPopulation(c, maxpower.PopulationSpec{
		Kind: maxpower.PopHighActivity,
		Size: 10000,
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population: %d vector pairs, mean %.3f mW, true max %.3f mW\n",
		pop.Size(), pop.MeanPower(), pop.TrueMax())

	res, err := maxpower.Estimate(pop, maxpower.EstimateOptions{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate: %.3f mW  (90%% CI [%.3f, %.3f])\n", res.Estimate, res.CILow, res.CIHigh)
	fmt.Printf("error vs true max: %+.2f%%\n", 100*(res.Estimate-pop.TrueMax())/pop.TrueMax())
	fmt.Printf("cost: %d simulated vector pairs in %d hyper-samples (converged: %v)\n",
		res.Units, res.HyperSamples, res.Converged)
	fmt.Printf("an exhaustive search would have simulated all %d pairs — %.0fx more\n",
		pop.Size(), float64(pop.Size())/float64(res.Units))
}
