// Custom netlist: the library is not limited to the built-in benchmark
// circuits — any combinational netlist in ISCAS-85 .bench format works.
// This example embeds a small carry-select-style netlist as a string,
// parses it, sweeps the maximum-power estimate across all four delay
// models (the paper's contribution 2: the method is delay-model
// independent), and prints the per-model populations' maxima.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/maxpower"
)

// A hand-written 4-bit adder with output buffers, in .bench format.
const netlistSrc = `
# add4: 4-bit ripple adder, 9 inputs (a0-3, b0-3, cin), 5 outputs
INPUT(a0)
INPUT(a1)
INPUT(a2)
INPUT(a3)
INPUT(b0)
INPUT(b1)
INPUT(b2)
INPUT(b3)
INPUT(cin)
OUTPUT(s0)
OUTPUT(s1)
OUTPUT(s2)
OUTPUT(s3)
OUTPUT(cout)

x0 = XOR(a0, b0)
s0 = XOR(x0, cin)
g0 = AND(a0, b0)
p0 = AND(x0, cin)
c1 = OR(g0, p0)

x1 = XOR(a1, b1)
s1 = XOR(x1, c1)
g1 = AND(a1, b1)
p1 = AND(x1, c1)
c2 = OR(g1, p1)

x2 = XOR(a2, b2)
s2 = XOR(x2, c2)
g2 = AND(a2, b2)
p2 = AND(x2, c2)
c3 = OR(g2, p2)

x3 = XOR(a3, b3)
s3 = XOR(x3, c3)
g3 = AND(a3, b3)
p3 = AND(x3, c3)
cout = OR(g3, p3)
`

func main() {
	c, err := maxpower.LoadBench("add4", strings.NewReader(netlistSrc))
	if err != nil {
		log.Fatal(err)
	}
	s := c.ComputeStats()
	fmt.Printf("parsed %s: %d inputs, %d outputs, %d gates, depth %d\n\n",
		s.Name, s.Inputs, s.Outputs, s.LogicGates, s.Depth)

	fmt.Printf("%-8s %12s %12s %10s %7s\n", "delay", "true max mW", "estimate", "err", "units")
	for _, model := range []string{"zero", "unit", "fanout", "table"} {
		pop, err := maxpower.BuildPopulation(c, maxpower.PopulationSpec{
			Kind:       maxpower.PopUniform,
			Size:       4000,
			DelayModel: model,
			Seed:       1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := maxpower.Estimate(pop, maxpower.EstimateOptions{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.4f %12.4f %+9.2f%% %7d\n",
			model, pop.TrueMax(), res.Estimate,
			100*(res.Estimate-pop.TrueMax())/pop.TrueMax(), res.Units)
	}
	fmt.Println("\nglitching under timed models raises both the mean and the maximum power,")
	fmt.Println("which is why delay-model fidelity matters for maximum-power sign-off.")
}
