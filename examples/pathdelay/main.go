// Path-delay estimation: the paper's conclusion suggests the same
// extreme-order-statistics machinery applies to "other fields of VLSI
// design automation; for example, longest path delay estimation". This
// example does exactly that: the random variable attached to a vector
// pair is not its cycle power but its settle time — the instant of the
// last signal change in the timed simulation, i.e. the delay of the
// longest path the pair sensitizes. The maximum over the population is
// the circuit's worst sensitizable delay (a lower bound on the static
// critical path, which may be false).
package main

import (
	"fmt"
	"log"

	"repro/internal/delay"
	"repro/internal/evt"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/vectorgen"
	"repro/maxpower"
)

func main() {
	const size = 16000
	c, err := maxpower.Circuit("C880")
	if err != nil {
		log.Fatal(err)
	}
	model := delay.StandardTable()
	eval := power.NewEvaluator(c, model, power.Params{})

	// Build the delay population by hand: generate vector pairs and record
	// each pair's settle time (ps) instead of its power.
	gen := vectorgen.Uniform{N: c.NumInputs()}
	rng := stats.NewRNG(1)
	delays := make([]float64, size)
	for i := range delays {
		p := gen.Generate(rng)
		_, settlePS, _ := eval.CycleDetail(p.V1, p.V2)
		delays[i] = float64(settlePS)
	}
	pop := vectorgen.FromPowers(c.Name+"/settle-times", delays)

	fmt.Printf("circuit %s under the %s delay model\n", c.Name, model.Name())
	fmt.Printf("population: %d vector pairs, mean settle %.0f ps, worst observed %.0f ps\n",
		pop.Size(), pop.MeanPower(), pop.TrueMax())

	est, err := evt.New(pop, evt.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res := est.Run(stats.NewRNG(2))
	fmt.Printf("EVT estimate of the maximum sensitizable delay: %.0f ps (90%% CI [%.0f, %.0f])\n",
		res.Estimate, res.CILow, res.CIHigh)
	fmt.Printf("error vs population max: %+.2f%%, cost %d simulated pairs (%.0fx fewer than exhaustive)\n",
		100*(res.Estimate-pop.TrueMax())/pop.TrueMax(), res.Units,
		float64(pop.Size())/float64(res.Units))

	// Contrast with the structural (topological) critical path — a
	// pessimistic static bound that ignores sensitization.
	structural := structuralBound(c, model)
	fmt.Printf("static topological bound: %d ps — the vector-driven maximum is %.0f%% of it\n",
		structural, 100*res.Estimate/float64(structural))
	fmt.Println("(the gap is the classic false-path pessimism of static timing)")
}

// structuralBound computes the longest path through the circuit by gate
// delays, ignoring sensitization.
func structuralBound(c *netlist.Circuit, m delay.Model) int64 {
	ds := m.Assign(c)
	longest := make([]int64, c.NumGates())
	var worst int64
	for i, g := range c.Gates {
		var in int64
		for _, f := range g.Fanin {
			if longest[f] > in {
				in = longest[f]
			}
		}
		longest[i] = in + ds[i]
		if longest[i] > worst {
			worst = longest[i]
		}
	}
	return worst
}
