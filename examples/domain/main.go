// Domain of attraction: the paper's §2–§3.1 argue that cycle power, being
// bounded, puts sample maxima in the Weibull (G₂) domain rather than the
// Gumbel (G₃) domain, and report that experiments confirmed it. This
// example performs that confirmation quantitatively: it draws sample
// maxima from a circuit's power population at several sample sizes, fits
// BOTH extreme-value laws by maximum likelihood, and prints the
// log-likelihood ratio — positive means the bounded Weibull law explains
// the maxima better, the paper's modelling choice.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/stats"
	"repro/internal/weibull"
	"repro/maxpower"
)

func main() {
	c, err := maxpower.Circuit("C3540") // the paper's Figure-1 circuit
	if err != nil {
		log.Fatal(err)
	}
	pop, err := maxpower.BuildPopulation(c, maxpower.PopulationSpec{
		Kind: maxpower.PopHighActivity, Size: 20000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: population of %d pairs, true max %.3f mW\n\n",
		c.Name, pop.Size(), pop.TrueMax())

	rng := stats.NewRNG(2)
	fmt.Printf("%4s %10s %12s %12s %14s  %s\n",
		"n", "samples", "Weibull α", "Weibull μ", "ℓ(G₂)−ℓ(G₃)", "verdict")
	for _, n := range []int{2, 10, 30, 50} {
		const samples = 500
		maxima := make([]float64, samples)
		for i := range maxima {
			m := math.Inf(-1)
			for j := 0; j < n; j++ {
				if p := pop.SamplePower(rng); p > m {
					m = p
				}
			}
			maxima[i] = m
		}
		d := weibull.DiagnoseDomain(maxima)
		verdict := "inconclusive"
		switch {
		case !d.WeibullOK:
			verdict = "Weibull fit failed"
		case !d.GumbelOK:
			verdict = "Gumbel fit failed"
		case d.LogLikRatio > 2:
			verdict = "Weibull domain (paper's choice)"
		case d.LogLikRatio < -2:
			verdict = "Gumbel domain"
		}
		alpha, mu := math.NaN(), math.NaN()
		if d.WeibullOK {
			alpha, mu = d.Weibull.Alpha, d.Weibull.Mu
		}
		fmt.Printf("%4d %10d %12.2f %12.3f %14.1f  %s\n",
			n, samples, alpha, mu, d.LogLikRatio, verdict)
	}
	fmt.Println("\nthe fitted Weibull endpoint μ approaches the true maximum as n grows,")
	fmt.Println("while a Gumbel fit, having no endpoint, can never answer the question.")
}
