// Baselines: every maximum-power technique in the repository on one
// problem, so their trade-offs are visible side by side (the paper's §I
// taxonomy):
//
//   - exact BDD maximization (Devadas et al. [1] style) — exact, but only
//     feasible for small circuits and zero delay;
//   - the EVT statistical estimator (the paper) — error/confidence bound
//     at a few thousand simulations;
//   - simple random sampling — a lower bound, no confidence statement;
//   - greedy bit-flip search (ATPG-flavoured, Wang & Roy [5][6] style) —
//     a tighter lower bound, still no statement;
//   - genetic search (K2 [8] style).
//
// The circuit is a 12-input random-logic block, small enough for the
// exact oracle under zero delay.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/delay"
	"repro/internal/evt"
	"repro/internal/power"
	"repro/internal/search"
	"repro/internal/srs"
	"repro/internal/stats"
	"repro/internal/vectorgen"
)

func main() {
	c, err := bench.RandomCircuit(bench.RandomOptions{Inputs: 12, Outputs: 6, Gates: 260, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %d inputs, %d gates, depth %d (zero-delay model)\n\n",
		c.NumInputs(), c.NumLogicGates(), c.Depth())

	// Exact oracle (zero delay).
	exactMW, exactRes, err := power.ExactZeroDelayMaxMW(c, power.Params{})
	if err != nil {
		log.Fatal(err)
	}

	eval := power.NewEvaluator(c, delay.Zero{}, power.Params{})
	pop, err := vectorgen.Build(eval, vectorgen.Uniform{N: c.NumInputs()},
		vectorgen.Options{Size: 30000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// EVT estimator.
	est, err := evt.New(pop, evt.Config{})
	if err != nil {
		log.Fatal(err)
	}
	evtRes := est.Run(stats.NewRNG(2))

	// SRS with the estimator's budget.
	srsBest := srs.Estimate(pop, evtRes.Units, stats.NewRNG(3))

	// Search baselines with roughly the same budget.
	greedy := search.Greedy(eval, search.GreedyOptions{Restarts: 8, Seed: 4})
	ga := search.Genetic(eval, search.GeneticOptions{Population: 40, Generations: 50, Seed: 5})

	fmt.Printf("%-34s %10s %9s %10s  %s\n", "method", "result mW", "vs exact", "cost", "guarantee")
	row := func(name string, mw float64, cost int, guarantee string) {
		fmt.Printf("%-34s %10.4f %+8.2f%% %10d  %s\n",
			name, mw, 100*(mw-exactMW)/exactMW, cost, guarantee)
	}
	row("exact BDD max-toggle [1]", exactMW, exactRes.Visited, "exact (zero delay, small only)")
	row("EVT estimator (this paper)", evtRes.Estimate, evtRes.Units,
		fmt.Sprintf("±5%% CI at 90%%: [%.4f, %.4f]", evtRes.CILow, evtRes.CIHigh))
	row("simple random sampling", srsBest, evtRes.Units, "lower bound only")
	row("greedy bit-flip search [5][6]", greedy.BestPower, greedy.Evaluations, "lower bound only")
	row("genetic search (K2 [8])", ga.BestPower, ga.Evaluations, "lower bound only")

	fmt.Printf("\npopulation census for context: |V|=%d, true sampled max %.4f mW (%.2f%% of exact)\n",
		pop.Size(), pop.TrueMax(), 100*pop.TrueMax()/exactMW)
	fmt.Println("note: the exact engine maximizes over ALL 2^24 vector pairs, so the")
	fmt.Println("sampled population's maximum can fall short of it — the statistical")
	fmt.Println("estimator targets the population it samples from.")
}
