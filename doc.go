// Package repro reproduces "Maximum Power Estimation Using the Limiting
// Distributions of Extreme Order Statistics" (Qiu, Wu & Pedram, DAC 1998).
//
// The public API lives in the maxpower package; internal packages provide
// the substrates (netlist, event-driven timing simulation, power model,
// vector-pair populations, hand-written statistics, the reverse-Weibull
// MLE, and the EVT estimator itself). Sampling is batched end to end:
// sources implementing evt.BatchSource supply each hyper-sample's m·n
// unit powers in one call, simulated bit-parallel (64 pairs per settle
// pass on zero-delay models) across a worker pool, bit-identical to the
// scalar path for any worker count. maxpowerd serves estimation jobs over
// JSON/HTTP with per-job worker budgets. See README.md for a tour,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-vs-measured comparison. The benchmarks in bench_test.go
// regenerate every table and figure of the paper at a reduced scale (plus
// BenchmarkEstimateStreaming for the batched hot path); cmd/experiments
// produces the full versions.
package repro
