package repro

// One benchmark per table and figure of the paper's evaluation section,
// plus the DESIGN.md ablations. Each benchmark exercises the same code
// path as the full experiment at a reduced scale (small population, few
// repetitions) so `go test -bench=.` finishes in minutes on one core;
// cmd/experiments runs the full-scale versions.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
)

// benchRunner builds a Runner with a small cached population. The
// population build (the expensive, uninteresting part) is triggered before
// the timer via the warm function.
func benchRunner(b *testing.B, circuits []string, pop int) *experiments.Runner {
	b.Helper()
	return experiments.NewRunner(experiments.Config{
		Circuits: circuits,
		PopSize:  pop,
		Runs:     3,
		Seed:     1,
	})
}

func BenchmarkTable1Unconstrained(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table1(); err != nil { // warm population cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Quality(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table2(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ConstrainedHigh(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table3(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4ConstrainedLow(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table4(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1SampleMaxima(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Figure1("C880", []int{2, 30}, 200); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure1("C880", []int{2, 30}, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2EstimatorDist(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Figure2("C880", []int{10}, 30); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure2("C880", []int{10}, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselinesExtension(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Baselines(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Baselines(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSampleSize(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationSampleSize("C880", []int{10, 30}, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationSampleSize("C880", []int{10, 30}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHyperSamples(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationHyperSamples("C880", []int{5, 10}, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationHyperSamples("C880", []int{5, 10}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFiniteCorrection(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationFiniteCorrection("C880", 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationFiniteCorrection("C880", 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMLEvsLSQ(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationMLEvsLSQ("C880", 10, 10); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationMLEvsLSQ("C880", 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// serviceRoundTrip submits one job over HTTP and polls until terminal;
// it is the service-level unit of work for BenchmarkServiceJobSubmit.
func serviceRoundTrip(b *testing.B, url string, req service.JobRequest) {
	b.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		r, err := http.Get(url + "/v1/jobs/" + sub.ID)
		if err != nil {
			b.Fatal(err)
		}
		var st service.JobStatus
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		r.Body.Close()
		if st.State.Terminal() {
			if st.State != service.StateDone {
				b.Fatalf("job %s: %s (%s)", sub.ID, st.State, st.Error)
			}
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	b.Fatalf("job %s did not finish", sub.ID)
}

// BenchmarkServiceJobSubmit measures the in-process HTTP round trip of
// one estimation job on a tiny circuit — the baseline for later
// caching/sharding PRs. "cold" forces a population-cache miss per
// iteration (fresh population seed); "warm" reuses one cached
// population for every iteration.
func BenchmarkServiceJobSubmit(b *testing.B) {
	newService := func() (*httptest.Server, *service.Manager) {
		mgr := service.NewManager(service.ManagerConfig{Workers: 2, CacheSize: 4})
		return httptest.NewServer(service.NewServer(mgr)), mgr
	}
	req := service.JobRequest{
		Circuit:    "C432",
		Population: service.PopulationSpec{Size: 20000, Seed: 1},
		Options:    service.EstimateOptions{Seed: 2},
	}

	b.Run("cold", func(b *testing.B) {
		srv, _ := newService()
		defer srv.Close()
		for i := 0; i < b.N; i++ {
			r := req
			r.Population.Seed = uint64(i) + 10 // unique key → cache miss
			serviceRoundTrip(b, srv.URL, r)
		}
	})
	b.Run("warm", func(b *testing.B) {
		srv, _ := newService()
		defer srv.Close()
		serviceRoundTrip(b, srv.URL, req) // populate the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serviceRoundTrip(b, srv.URL, req)
		}
	})
}

func BenchmarkAblationDelayModel(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 2000)
	if _, err := r.AblationDelayModel("C880", 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationDelayModel("C880", 2); err != nil {
			b.Fatal(err)
		}
	}
}
