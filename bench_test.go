package repro

// One benchmark per table and figure of the paper's evaluation section,
// plus the DESIGN.md ablations. Each benchmark exercises the same code
// path as the full experiment at a reduced scale (small population, few
// repetitions) so `go test -bench=.` finishes in minutes on one core;
// cmd/experiments runs the full-scale versions.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/delay"
	"repro/internal/evt"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vectorgen"
)

// benchRunner builds a Runner with a small cached population. The
// population build (the expensive, uninteresting part) is triggered before
// the timer via the warm function.
func benchRunner(b *testing.B, circuits []string, pop int) *experiments.Runner {
	b.Helper()
	return experiments.NewRunner(experiments.Config{
		Circuits: circuits,
		PopSize:  pop,
		Runs:     3,
		Seed:     1,
	})
}

func BenchmarkTable1Unconstrained(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table1(); err != nil { // warm population cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Quality(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table2(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ConstrainedHigh(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table3(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4ConstrainedLow(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table4(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1SampleMaxima(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Figure1("C880", []int{2, 30}, 200); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure1("C880", []int{2, 30}, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2EstimatorDist(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Figure2("C880", []int{10}, 30); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure2("C880", []int{10}, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselinesExtension(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Baselines(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Baselines(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSampleSize(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationSampleSize("C880", []int{10, 30}, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationSampleSize("C880", []int{10, 30}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHyperSamples(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationHyperSamples("C880", []int{5, 10}, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationHyperSamples("C880", []int{5, 10}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFiniteCorrection(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationFiniteCorrection("C880", 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationFiniteCorrection("C880", 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMLEvsLSQ(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationMLEvsLSQ("C880", 10, 10); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationMLEvsLSQ("C880", 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// serviceRoundTrip submits one job over HTTP and polls until terminal;
// it is the service-level unit of work for BenchmarkServiceJobSubmit.
func serviceRoundTrip(b *testing.B, url string, req service.JobRequest) {
	b.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		r, err := http.Get(url + "/v1/jobs/" + sub.ID)
		if err != nil {
			b.Fatal(err)
		}
		var st service.JobStatus
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		r.Body.Close()
		if st.State.Terminal() {
			if st.State != service.StateDone {
				b.Fatalf("job %s: %s (%s)", sub.ID, st.State, st.Error)
			}
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	b.Fatalf("job %s did not finish", sub.ID)
}

// BenchmarkServiceJobSubmit measures the in-process HTTP round trip of
// one estimation job on a tiny circuit — the baseline for later
// caching/sharding PRs. "cold" forces a population-cache miss per
// iteration (fresh population seed); "warm" reuses one cached
// population for every iteration.
func BenchmarkServiceJobSubmit(b *testing.B) {
	newService := func() (*httptest.Server, *service.Manager) {
		mgr, err := service.NewManager(service.ManagerConfig{Workers: 2, CacheSize: 4})
		if err != nil {
			b.Fatal(err)
		}
		return httptest.NewServer(service.NewServer(mgr)), mgr
	}
	req := service.JobRequest{
		Circuit:    "C432",
		Population: service.PopulationSpec{Size: 20000, Seed: 1},
		Options:    service.EstimateOptions{Seed: 2},
	}

	b.Run("cold", func(b *testing.B) {
		srv, _ := newService()
		defer srv.Close()
		for i := 0; i < b.N; i++ {
			r := req
			r.Population.Seed = uint64(i) + 10 // unique key → cache miss
			serviceRoundTrip(b, srv.URL, r)
		}
	})
	b.Run("warm", func(b *testing.B) {
		srv, _ := newService()
		defer srv.Close()
		serviceRoundTrip(b, srv.URL, req) // populate the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serviceRoundTrip(b, srv.URL, req)
		}
	})
}

// scalarStream hides StreamSource's SampleBatch, forcing the estimator
// onto the one-unit-at-a-time path — the pre-batching baseline.
type scalarStream struct{ src *vectorgen.StreamSource }

func (s scalarStream) SamplePower(rng *stats.RNG) float64 { return s.src.SamplePower(rng) }
func (s scalarStream) Size() int                          { return s.src.Size() }

// BenchmarkEstimateStreaming measures the dominant hot path of real-design
// estimation — on-demand simulation of every sampled unit — on the
// C3540-scale circuit, comparing the scalar baseline against the batched
// sampling seam at 1 and NumCPU workers. All variants are bit-identical in
// results (TestEstimateStreamingDeterministicAcrossWorkers); only the cost
// per unit changes. Most seeds run the full 8 hyper-samples (2400 units);
// a few converge a hyper-sample early, so the guard only rejects runs too
// small to have exercised the streaming path at all. Compare runs at equal
// -benchtime (the canonical protocol is -benchtime 3x, whose seeds all do
// identical full-length work).
func BenchmarkEstimateStreaming(b *testing.B) {
	c := bench.MustGenerate("C3540")
	gen := vectorgen.HighActivity{N: c.NumInputs(), MinActivity: 0.3}
	cfg := evt.Config{Epsilon: 0.001, MaxHyperSamples: 8}

	run := func(b *testing.B, src evt.Source) {
		b.Helper()
		est, err := evt.New(src, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			res := est.Run(stats.NewRNG(uint64(i) + 1))
			if res.Units < 300 {
				b.Fatalf("units = %d, want ≥ 300", res.Units)
			}
		}
	}
	newSource := func(b *testing.B, model delay.Model, workers int) *vectorgen.StreamSource {
		b.Helper()
		src, err := vectorgen.NewStreamSource(power.NewEvaluator(c, model, power.Params{}), gen)
		if err != nil {
			b.Fatal(err)
		}
		src.Workers = workers
		return src
	}
	// Compiled variants run the multi-word striped kernel (sim.Program +
	// sim.Striped) the production maxpower paths enable by default; the
	// shared cache amortizes the one-time netlist compile across b.N.
	kernels := sim.NewProgramCache(4)
	newCompiledSource := func(b *testing.B, model delay.Model, workers int) *vectorgen.StreamSource {
		b.Helper()
		ev := power.NewEvaluator(c, model, power.Params{})
		ev.UseKernels(kernels, c.Name+"/"+model.Name())
		src, err := vectorgen.NewStreamSource(ev, gen)
		if err != nil {
			b.Fatal(err)
		}
		src.Workers = workers
		return src
	}
	// Speculative variants run the settle-then-patch executor
	// (sim.Speculative) — the library default for timed models.
	newSpeculativeSource := func(b *testing.B, model delay.Model, workers int) *vectorgen.StreamSource {
		b.Helper()
		ev := power.NewEvaluator(c, model, power.Params{})
		ev.UseSpeculative(kernels, c.Name+"/"+model.Name())
		src, err := vectorgen.NewStreamSource(ev, gen)
		if err != nil {
			b.Fatal(err)
		}
		src.Workers = workers
		return src
	}

	// Zero delay: the batch path packs 64 pairs per settle pass.
	b.Run("zero/scalar", func(b *testing.B) {
		run(b, scalarStream{src: newSource(b, delay.Zero{}, 1)})
	})
	b.Run("zero/batched-1", func(b *testing.B) {
		run(b, newSource(b, delay.Zero{}, 1))
	})
	b.Run("zero/batched-ncpu", func(b *testing.B) {
		run(b, newSource(b, delay.Zero{}, runtime.NumCPU()))
	})
	b.Run("zero/compiled-1", func(b *testing.B) {
		run(b, newCompiledSource(b, delay.Zero{}, 1))
	})
	// Timed (fanout-loaded) delay: the lane-packed event-driven TimedBatch
	// simulates 64 pairs per pass (sim/timedbatch.go), so the single-worker
	// batched variant already captures the word-level speedup; ncpu adds
	// the worker fan-out on top.
	b.Run("fanout/scalar", func(b *testing.B) {
		run(b, scalarStream{src: newSource(b, delay.FanoutLoaded{}, 1)})
	})
	b.Run("fanout/batched-1", func(b *testing.B) {
		run(b, newSource(b, delay.FanoutLoaded{}, 1))
	})
	b.Run("fanout/batched-ncpu", func(b *testing.B) {
		run(b, newSource(b, delay.FanoutLoaded{}, runtime.NumCPU()))
	})
	b.Run("fanout/compiled-1", func(b *testing.B) {
		run(b, newCompiledSource(b, delay.FanoutLoaded{}, 1))
	})
	b.Run("fanout/compiled-ncpu", func(b *testing.B) {
		run(b, newCompiledSource(b, delay.FanoutLoaded{}, runtime.NumCPU()))
	})
	b.Run("fanout/speculative-1", func(b *testing.B) {
		run(b, newSpeculativeSource(b, delay.FanoutLoaded{}, 1))
	})
	b.Run("fanout/speculative-ncpu", func(b *testing.B) {
		run(b, newSpeculativeSource(b, delay.FanoutLoaded{}, runtime.NumCPU()))
	})
}

func BenchmarkAblationDelayModel(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 2000)
	if _, err := r.AblationDelayModel("C880", 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationDelayModel("C880", 2); err != nil {
			b.Fatal(err)
		}
	}
}
