package repro

// One benchmark per table and figure of the paper's evaluation section,
// plus the DESIGN.md ablations. Each benchmark exercises the same code
// path as the full experiment at a reduced scale (small population, few
// repetitions) so `go test -bench=.` finishes in minutes on one core;
// cmd/experiments runs the full-scale versions.

import (
	"testing"

	"repro/internal/experiments"
)

// benchRunner builds a Runner with a small cached population. The
// population build (the expensive, uninteresting part) is triggered before
// the timer via the warm function.
func benchRunner(b *testing.B, circuits []string, pop int) *experiments.Runner {
	b.Helper()
	return experiments.NewRunner(experiments.Config{
		Circuits: circuits,
		PopSize:  pop,
		Runs:     3,
		Seed:     1,
	})
}

func BenchmarkTable1Unconstrained(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table1(); err != nil { // warm population cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Quality(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table2(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ConstrainedHigh(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table3(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4ConstrainedLow(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Table4(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1SampleMaxima(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Figure1("C880", []int{2, 30}, 200); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure1("C880", []int{2, 30}, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2EstimatorDist(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Figure2("C880", []int{10}, 30); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure2("C880", []int{10}, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselinesExtension(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.Baselines(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Baselines(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSampleSize(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationSampleSize("C880", []int{10, 30}, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationSampleSize("C880", []int{10, 30}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHyperSamples(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationHyperSamples("C880", []int{5, 10}, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationHyperSamples("C880", []int{5, 10}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFiniteCorrection(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationFiniteCorrection("C880", 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationFiniteCorrection("C880", 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMLEvsLSQ(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 4000)
	if _, err := r.AblationMLEvsLSQ("C880", 10, 10); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationMLEvsLSQ("C880", 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDelayModel(b *testing.B) {
	r := benchRunner(b, []string{"C880"}, 2000)
	if _, err := r.AblationDelayModel("C880", 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationDelayModel("C880", 2); err != nil {
			b.Fatal(err)
		}
	}
}
