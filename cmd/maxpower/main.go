// Command maxpower estimates the maximum cycle power of a benchmark
// circuit (or a user-supplied .bench netlist) using the extreme-order-
// statistics estimator, and compares it against the population's true
// maximum and the simple-random-sampling baseline.
//
// Usage:
//
//	maxpower -circuit C3540 [-pop 20000] [-kind high-activity]
//	         [-activity 0.3] [-delay fanout] [-eps 0.05] [-conf 0.9]
//	         [-seed 1] [-bench path.bench]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/avgpower"
	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/srs"
	"repro/internal/stats"
	"repro/internal/vectorgen"
	"repro/maxpower"
)

func main() {
	var (
		circuit  = flag.String("circuit", "C3540", "built-in circuit name (see -list)")
		benchF   = flag.String("bench", "", "path to a .bench netlist (overrides -circuit)")
		list     = flag.Bool("list", false, "list built-in circuits and exit")
		popSize  = flag.Int("pop", 20000, "population size |V|")
		kind     = flag.String("kind", maxpower.PopHighActivity, "population kind: uniform|high-activity|constrained")
		activity = flag.Float64("activity", 0.3, "transition probability (constrained) or activity floor (high-activity)")
		delayM   = flag.String("delay", "fanout", "delay model: zero|unit|fanout|table")
		eps      = flag.Float64("eps", 0.05, "target relative error ε")
		conf     = flag.Float64("conf", 0.90, "confidence level l")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "simulation workers (0 = NumCPU)")
		stream   = flag.Bool("stream", false, "simulate on demand instead of precomputing the population (no ground truth reported)")
		avg      = flag.Bool("avg", false, "also estimate the average power (Monte-Carlo mean with the same ε and confidence)")
		specFile = flag.String("spec", "", "JSON transition-probability specification (Category I.2); overrides -kind/-activity")
	)
	flag.Parse()

	if *list {
		for _, n := range maxpower.CircuitNames() {
			fmt.Println(n)
		}
		return
	}

	c, err := loadCircuit(*benchF, *circuit)
	if err != nil {
		fatal(err)
	}
	cs := c.ComputeStats()
	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates, depth %d\n",
		cs.Name, cs.Inputs, cs.Outputs, cs.LogicGates, cs.Depth)

	spec := maxpower.PopulationSpec{
		Kind:       *kind,
		Size:       *popSize,
		Activity:   *activity,
		DelayModel: *delayM,
		Seed:       *seed,
		Workers:    *workers,
	}

	if *stream {
		// On-demand simulation: the real-design flow. No exhaustive ground
		// truth exists, which is the whole point of the method. -workers
		// fans out each hyper-sample's simulations without changing the
		// result (generation stays sequential in the RNG).
		fmt.Printf("streaming estimation: kind=%s nominal |V|=%d delay=%s workers=%s…\n",
			*kind, *popSize, *delayM, workersLabel(*workers))
		res, err := maxpower.EstimateStreaming(c, spec, maxpower.EstimateOptions{
			Epsilon: *eps, Confidence: *conf, Seed: *seed + 1, Workers: *workers,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nEVT estimator (n=30, m=10, ε=%.0f%%, l=%.0f%%):\n", 100**eps, 100**conf)
		fmt.Printf("  estimate      %.4f mW\n", res.Estimate)
		fmt.Printf("  %.0f%% CI       [%.4f, %.4f] mW\n", 100**conf, res.CILow, res.CIHigh)
		fmt.Printf("  simulated     %d vector pairs (%d hyper-samples, converged=%v)\n",
			res.Units, res.HyperSamples, res.Converged)
		fmt.Printf("  best observed %.4f mW (the SRS-style lower bound seen on the way)\n", res.ObservedMax)
		return
	}

	var pop *maxpower.Population
	if *specFile != "" {
		fmt.Printf("building population from spec %s: |V|=%d delay=%s…\n", *specFile, *popSize, *delayM)
		pop, err = populationFromSpec(c, *specFile, *popSize, *delayM, *seed, *workers)
	} else {
		fmt.Printf("building population: kind=%s |V|=%d delay=%s…\n", *kind, *popSize, *delayM)
		pop, err = maxpower.BuildPopulation(c, spec)
	}
	if err != nil {
		fatal(err)
	}
	actual := pop.TrueMax()
	y := pop.QualifiedFraction(*eps)
	fmt.Printf("population: mean %.4f mW, true max %.4f mW, qualified fraction Y = %.6f\n",
		pop.MeanPower(), actual, y)

	res, err := maxpower.Estimate(pop, maxpower.EstimateOptions{
		Epsilon: *eps, Confidence: *conf, Seed: *seed + 1,
	})
	if err != nil {
		fatal(err)
	}
	errPct := 100 * (res.Estimate - actual) / actual
	fmt.Printf("\nEVT estimator (n=30, m=10, ε=%.0f%%, l=%.0f%%):\n", 100**eps, 100**conf)
	fmt.Printf("  estimate      %.4f mW   (error %+.2f%% vs true max)\n", res.Estimate, errPct)
	fmt.Printf("  %.0f%% CI       [%.4f, %.4f] mW\n", 100**conf, res.CILow, res.CIHigh)
	fmt.Printf("  units         %d (%d hyper-samples, converged=%v)\n",
		res.Units, res.HyperSamples, res.Converged)

	if *avg {
		avgRes, err := avgpower.Estimate(pop, avgpower.Config{Epsilon: *eps, Confidence: *conf}, stats.NewRNG(*seed+3))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nMonte-Carlo average power (same ε, l):\n")
		fmt.Printf("  mean          %.4f mW   (CI [%.4f, %.4f], %d units, converged=%v)\n",
			avgRes.Mean, avgRes.CILow, avgRes.CIHigh, avgRes.Units, avgRes.Converged)
		fmt.Printf("  max/mean ratio %.2f\n", res.Estimate/avgRes.Mean)
	}

	// SRS with the same unit budget, for contrast.
	srsEst := srs.Estimate(pop, res.Units, stats.NewRNG(*seed+2))
	fmt.Printf("\nSRS baseline with the same %d units:\n", res.Units)
	fmt.Printf("  estimate      %.4f mW   (error %+.2f%%)\n",
		srsEst, 100*(srsEst-actual)/actual)
	theo := srs.TheoreticalUnits(y, *conf)
	if math.IsInf(theo, 1) {
		fmt.Printf("  theoretical SRS budget for ε=%.0f%%: unbounded (no qualified units)\n", 100**eps)
	} else {
		fmt.Printf("  theoretical SRS budget for ε=%.0f%% at l=%.0f%%: %.0f units (%.1fx ours)\n",
			100**eps, 100**conf, theo, theo/float64(res.Units))
	}
}

func loadCircuit(benchPath, name string) (*netlist.Circuit, error) {
	if benchPath != "" {
		return maxpower.LoadBenchFile(benchPath)
	}
	return maxpower.Circuit(name)
}

// populationFromSpec builds a population from a JSON Category I.2
// transition-probability specification file.
func populationFromSpec(c *netlist.Circuit, path string, size int, delayName string, seed uint64, workers int) (*maxpower.Population, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := vectorgen.ParseSpec(f)
	if err != nil {
		return nil, err
	}
	gen, err := spec.Generator(c.NumInputs())
	if err != nil {
		return nil, err
	}
	model, err := delay.ByName(delayName)
	if err != nil {
		return nil, err
	}
	eval := power.NewEvaluator(c, model, power.Params{})
	return vectorgen.Build(eval, gen, vectorgen.Options{Size: size, Seed: seed, Workers: workers})
}

func workersLabel(n int) string {
	if n <= 0 {
		return "NumCPU"
	}
	return fmt.Sprintf("%d", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maxpower:", err)
	os.Exit(1)
}
