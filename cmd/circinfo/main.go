// Command circinfo prints structural statistics of the built-in benchmark
// circuits (or a user .bench file), and can export any built-in circuit in
// .bench format for external tools.
//
// Usage:
//
//	circinfo                    # table of all built-in circuits
//	circinfo -circuit C6288     # details for one circuit
//	circinfo -bench my.bench    # details for a user netlist
//	circinfo -circuit C432 -export c432.bench
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/netlist"
	"repro/maxpower"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "show details for one built-in circuit")
		benchF  = flag.String("bench", "", "show details for a .bench netlist file")
		export  = flag.String("export", "", "write the selected circuit to this .bench file")
	)
	flag.Parse()

	switch {
	case *benchF != "":
		c, err := maxpower.LoadBenchFile(*benchF)
		if err != nil {
			fatal(err)
		}
		details(c)
		exportIf(c, *export)
	case *circuit != "":
		c, err := maxpower.Circuit(*circuit)
		if err != nil {
			fatal(err)
		}
		details(c)
		exportIf(c, *export)
	default:
		overview()
	}
}

func overview() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CIRCUIT\tROLE\tINPUTS\tOUTPUTS\tGATES\tDEPTH\tMAX FANOUT")
	for _, spec := range bench.Specs {
		c, err := bench.Generate(spec.Name)
		if err != nil {
			fatal(err)
		}
		s := c.ComputeStats()
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			s.Name, spec.Role, s.Inputs, s.Outputs, s.LogicGates, s.Depth, s.MaxFanout)
	}
	w.Flush()
}

func details(c *netlist.Circuit) {
	s := c.ComputeStats()
	fmt.Printf("circuit %s\n", s.Name)
	fmt.Printf("  inputs      %d\n", s.Inputs)
	fmt.Printf("  outputs     %d\n", s.Outputs)
	fmt.Printf("  logic gates %d\n", s.LogicGates)
	fmt.Printf("  depth       %d\n", s.Depth)
	fmt.Printf("  max fanout  %d\n", s.MaxFanout)
	fmt.Printf("  avg fanout  %.2f\n", s.AvgFanout)
	fmt.Println("  gate mix:")
	for _, k := range s.SortedKindNames() {
		fmt.Printf("    %-5s %d\n", k, s.KindCounts[k])
	}
}

func exportIf(c *netlist.Circuit, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := netlist.WriteBench(f, c); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "circinfo:", err)
	os.Exit(1)
}
