package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, variants []Variant) string {
	t.Helper()
	enc, err := json.Marshal(Baseline{Variants: variants})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckAgainst(t *testing.T) {
	base := writeBaseline(t, []Variant{
		{Circuit: "C432", Model: "zero", BytesPerOp: 2000},
		{Circuit: "C3540", Model: "fanout", BytesPerOp: 60000},
	})

	// Within budget: identical, +25% on the small one (inside the
	// absolute 4 KiB jitter floor), and a brand-new variant.
	ok := []Variant{
		{Circuit: "C432", Model: "zero", BytesPerOp: 2500},
		{Circuit: "C3540", Model: "fanout", BytesPerOp: 60000},
		{Circuit: "C880", Model: "zero", BytesPerOp: 1 << 30},
	}
	if err := checkAgainst(base, ok); err != nil {
		t.Fatalf("in-budget variants rejected: %v", err)
	}

	// A real regression: >25% growth and past the absolute floor.
	bad := []Variant{{Circuit: "C3540", Model: "fanout", BytesPerOp: 90000}}
	err := checkAgainst(base, bad)
	if err == nil {
		t.Fatal("90000 vs 60000 B/run accepted")
	}
	if !strings.Contains(err.Error(), "C3540/fanout") {
		t.Fatalf("regression error does not name the variant: %v", err)
	}

	// Small-magnitude growth stays under the jitter floor even when the
	// ratio is large.
	tiny := []Variant{{Circuit: "C432", Model: "zero", BytesPerOp: 6000}}
	if err := checkAgainst(base, tiny); err != nil {
		t.Fatalf("sub-floor growth rejected: %v", err)
	}

	if err := checkAgainst(filepath.Join(t.TempDir(), "missing.json"), ok); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
