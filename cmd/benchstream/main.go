// Command benchstream measures the streaming-estimation hot path — the
// cost of one full estimator run with on-demand simulation — and emits a
// machine-readable JSON baseline (BENCH_streaming.json). CI runs it on
// every push and uploads the file as an artifact, so regressions in the
// lane-packed simulators show up as a diffable number instead of a vague
// "feels slower".
//
// Usage:
//
//	benchstream                      # all circuit × delay-model × engine variants
//	benchstream -circuits C432       # subset
//	benchstream -iterations 3        # runs per variant (report the mean)
//	benchstream -o BENCH_streaming.json
//	benchstream -check BENCH_streaming.json   # regression gate (no output file)
//
// Protocol: each variant pins the estimator to 8 hyper-samples at
// ε = 0.001 (the BenchmarkEstimateStreaming configuration) and times
// complete runs via testing.Benchmark, single worker, so the number is
// the single-core cost of the lane-packed engines — comparable across
// commits on the same machine, not across machines. Every circuit ×
// delay-model pair is measured on two engines: "batched" (the
// interpreted packed-vector pipeline) and "compiled" (the flat striped
// kernel, sharing one program cache across iterations the way the
// service does). Allocation figures (allocs_per_run, bytes_per_run)
// come from the same runs via -benchmem-style accounting.
//
// -check gates on two axes against the committed baseline:
//   - bytes_per_run: allocation volume is a property of the code and
//     comparable across machines; >25% growth fails.
//   - ns_per_run: wall time is machine-dependent, so the gate is
//     deliberately loose (>25% growth with an absolute floor) and the
//     baseline must be refreshed whenever the reference machine
//     changes; it exists to catch order-of-magnitude kernel
//     regressions, not single-digit drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/delay"
	"repro/internal/evt"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vectorgen"
)

// Variant is one measured configuration. Engine is "batched" or
// "compiled"; older baselines predate the field, and an empty value
// reads as "batched" for gating.
type Variant struct {
	Circuit     string  `json:"circuit"`
	Model       string  `json:"delay_model"`
	Engine      string  `json:"engine,omitempty"`
	NsPerOp     int64   `json:"ns_per_run"`
	MsPerOp     float64 `json:"ms_per_run"`
	Units       int     `json:"units_per_run"`
	AllocsPerOp int64   `json:"allocs_per_run"`
	BytesPerOp  int64   `json:"bytes_per_run"`
}

// key identifies a variant across baseline generations: an absent
// engine field (pre-compiled-kernel baselines) gates the batched
// engine.
func (v Variant) key() string {
	eng := v.Engine
	if eng == "" {
		eng = "batched"
	}
	return v.Circuit + "/" + v.Model + "/" + eng
}

// Baseline is the emitted document.
type Baseline struct {
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	NumCPU     int       `json:"num_cpu"`
	Timestamp  time.Time `json:"timestamp"`
	Iterations int       `json:"iterations_per_variant"`
	Variants   []Variant `json:"variants"`
}

func main() {
	var (
		circuits   = flag.String("circuits", "C432,C3540", "comma-separated benchmark circuits")
		iterations = flag.Int("iterations", 3, "estimator runs per variant")
		out        = flag.String("o", "BENCH_streaming.json", "output file (- for stdout)")
		check      = flag.String("check", "", "baseline file to gate against (fails if bytes_per_run or ns_per_run grows >25%); suppresses output file")
	)
	flag.Parse()

	base := Baseline{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().UTC(),
		Iterations: *iterations,
	}
	models := []delay.Model{delay.Zero{}, delay.FanoutLoaded{}}
	engines := []string{"batched", "compiled"}
	// One program cache for the whole sweep, shared the way the service
	// shares its kernel cache: each (circuit, model) compiles once and
	// every iteration after that hits.
	kernels := sim.NewProgramCache(16)
	for _, name := range strings.Split(*circuits, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, err := bench.Generate(name)
		if err != nil {
			fatal(err)
		}
		for _, model := range models {
			for _, engine := range engines {
				v, err := measure(name, c.NumInputs(), model, engine, *iterations, kernels)
				if err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "%-8s %-14s %-9s %8.1f ms/run %10d B/run %6d allocs/run (%d units)\n",
					v.Circuit, v.Model, v.Engine, v.MsPerOp, v.BytesPerOp, v.AllocsPerOp, v.Units)
				base.Variants = append(base.Variants, v)
			}
		}
	}

	if *check != "" {
		if err := checkAgainst(*check, base.Variants); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "benchstream: allocation and wall-time budgets hold against", *check)
		return
	}

	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// checkAgainst compares measured variants with the committed baseline
// and errors on regressions. bytes_per_run is gated at >25% growth
// (with a small absolute floor so near-zero baselines don't trip on
// kilobyte noise) — allocation volume is a property of the code.
// ns_per_run is gated at the same ratio with a 2 ms absolute floor:
// wall time IS machine-dependent, so the gate is only meaningful when
// the baseline was refreshed on the reference machine, and it is
// deliberately loose — it catches a kernel falling off a performance
// cliff, not single-digit drift. Variants with no baseline entry (new
// engines, new circuits) pass.
func checkAgainst(path string, got []Variant) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want Baseline
	if err := json.Unmarshal(raw, &want); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	ref := make(map[string]Variant, len(want.Variants))
	for _, v := range want.Variants {
		ref[v.key()] = v
	}
	const (
		growLimit   = 1.25
		minGrowthB  = 4 << 10   // ignore regressions under 4 KiB/run (seed-set jitter)
		minGrowthNS = 2_000_000 // ignore regressions under 2 ms/run (scheduler noise)
	)
	var bad []string
	for _, v := range got {
		w, ok := ref[v.key()]
		if !ok {
			continue // new variant: no baseline yet
		}
		limit := int64(float64(w.BytesPerOp) * growLimit)
		if floor := w.BytesPerOp + minGrowthB; limit < floor {
			limit = floor
		}
		if v.BytesPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s: %d B/run vs baseline %d (limit %d)",
				v.key(), v.BytesPerOp, w.BytesPerOp, limit))
		}
		nsLimit := int64(float64(w.NsPerOp) * growLimit)
		if floor := w.NsPerOp + minGrowthNS; nsLimit < floor {
			nsLimit = floor
		}
		if v.NsPerOp > nsLimit {
			bad = append(bad, fmt.Sprintf("%s: %.1f ms/run vs baseline %.1f (limit %.1f)",
				v.key(), float64(v.NsPerOp)/1e6, float64(w.NsPerOp)/1e6, float64(nsLimit)/1e6))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// measure times complete single-worker estimator runs of the
// BenchmarkEstimateStreaming configuration through testing.Benchmark.
func measure(name string, inputs int, model delay.Model, engine string, iterations int, kernels *sim.ProgramCache) (Variant, error) {
	circuit, err := bench.Generate(name)
	if err != nil {
		return Variant{}, err
	}
	gen := vectorgen.HighActivity{N: inputs, MinActivity: 0.3}
	cfg := evt.Config{Epsilon: 0.001, MaxHyperSamples: 8}
	var units int
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		ev := power.NewEvaluator(circuit, model, power.Params{})
		if engine == "compiled" {
			ev.UseKernels(kernels, name+"/"+model.Name())
		}
		src, err := vectorgen.NewStreamSource(ev, gen)
		if err != nil {
			runErr = err
			b.Skip()
			return
		}
		src.Workers = 1
		est, err := evt.New(src, cfg)
		if err != nil {
			runErr = err
			b.Skip()
			return
		}
		b.ReportAllocs()
		// Cycle through a fixed seed set so ns/op is the mean over the
		// same runs whatever iteration count the harness settles on
		// (low seeds do full-length 8-hyper-sample runs; see
		// bench_test.go's protocol note).
		for i := 0; i < b.N; i++ {
			res := est.Run(stats.NewRNG(uint64(i%iterations) + 1))
			units = res.Units
		}
	})
	if runErr != nil {
		return Variant{}, runErr
	}
	ns := r.NsPerOp()
	return Variant{
		Circuit:     name,
		Model:       model.Name(),
		Engine:      engine,
		NsPerOp:     ns,
		MsPerOp:     float64(ns) / 1e6,
		Units:       units,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchstream:", err)
	os.Exit(1)
}
