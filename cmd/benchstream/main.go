// Command benchstream measures the streaming-estimation hot path — the
// cost of one full estimator run with on-demand simulation — and emits a
// machine-readable JSON baseline (BENCH_streaming.json). CI runs it on
// every push and uploads the file as an artifact, so regressions in the
// lane-packed simulators show up as a diffable number instead of a vague
// "feels slower".
//
// Usage:
//
//	benchstream                      # all circuit × delay-model variants
//	benchstream -circuits C432       # subset
//	benchstream -iterations 3        # runs per variant (report the mean)
//	benchstream -o BENCH_streaming.json
//	benchstream -check BENCH_streaming.json   # regression gate (no output file)
//
// Protocol: each variant pins the estimator to 8 hyper-samples at
// ε = 0.001 (the BenchmarkEstimateStreaming configuration) and times
// complete runs via testing.Benchmark, single worker, so the number is
// the single-core cost of the lane-packed engines — comparable across
// commits on the same machine, not across machines. Allocation figures
// (allocs_per_run, bytes_per_run) come from the same runs via
// -benchmem-style accounting; unlike wall time they ARE comparable
// across machines, which is why -check gates on bytes_per_run: a >25%
// growth over the committed baseline fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/delay"
	"repro/internal/evt"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/vectorgen"
)

// Variant is one measured configuration.
type Variant struct {
	Circuit     string  `json:"circuit"`
	Model       string  `json:"delay_model"`
	NsPerOp     int64   `json:"ns_per_run"`
	MsPerOp     float64 `json:"ms_per_run"`
	Units       int     `json:"units_per_run"`
	AllocsPerOp int64   `json:"allocs_per_run"`
	BytesPerOp  int64   `json:"bytes_per_run"`
}

// Baseline is the emitted document.
type Baseline struct {
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	NumCPU     int       `json:"num_cpu"`
	Timestamp  time.Time `json:"timestamp"`
	Iterations int       `json:"iterations_per_variant"`
	Variants   []Variant `json:"variants"`
}

func main() {
	var (
		circuits   = flag.String("circuits", "C432,C3540", "comma-separated benchmark circuits")
		iterations = flag.Int("iterations", 3, "estimator runs per variant")
		out        = flag.String("o", "BENCH_streaming.json", "output file (- for stdout)")
		check      = flag.String("check", "", "baseline file to gate against (fails if bytes_per_run grows >25%); suppresses output file")
	)
	flag.Parse()

	base := Baseline{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().UTC(),
		Iterations: *iterations,
	}
	models := []delay.Model{delay.Zero{}, delay.FanoutLoaded{}}
	for _, name := range strings.Split(*circuits, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, err := bench.Generate(name)
		if err != nil {
			fatal(err)
		}
		for _, model := range models {
			v, err := measure(name, c.NumInputs(), model, *iterations)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "%-8s %-14s %8.1f ms/run %10d B/run %6d allocs/run (%d units)\n",
				v.Circuit, v.Model, v.MsPerOp, v.BytesPerOp, v.AllocsPerOp, v.Units)
			base.Variants = append(base.Variants, v)
		}
	}

	if *check != "" {
		if err := checkAgainst(*check, base.Variants); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "benchstream: allocation budget holds against", *check)
		return
	}

	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// checkAgainst compares measured variants with the committed baseline and
// errors if any variant's bytes_per_run grew more than 25% (with a small
// absolute floor so near-zero baselines don't trip on kilobyte noise).
// Wall time is deliberately not gated — it is machine-dependent — but
// allocation volume is a property of the code.
func checkAgainst(path string, got []Variant) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want Baseline
	if err := json.Unmarshal(raw, &want); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	ref := make(map[string]Variant, len(want.Variants))
	for _, v := range want.Variants {
		ref[v.Circuit+"/"+v.Model] = v
	}
	const (
		growLimit  = 1.25
		minGrowthB = 4 << 10 // ignore regressions under 4 KiB/run (seed-set jitter)
	)
	var bad []string
	for _, v := range got {
		w, ok := ref[v.Circuit+"/"+v.Model]
		if !ok {
			continue // new variant: no baseline yet
		}
		limit := int64(float64(w.BytesPerOp) * growLimit)
		if floor := w.BytesPerOp + minGrowthB; limit < floor {
			limit = floor
		}
		if v.BytesPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s/%s: %d B/run vs baseline %d (limit %d)",
				v.Circuit, v.Model, v.BytesPerOp, w.BytesPerOp, limit))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bytes_per_run regression:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// measure times complete single-worker estimator runs of the
// BenchmarkEstimateStreaming configuration through testing.Benchmark.
func measure(name string, inputs int, model delay.Model, iterations int) (Variant, error) {
	circuit, err := bench.Generate(name)
	if err != nil {
		return Variant{}, err
	}
	gen := vectorgen.HighActivity{N: inputs, MinActivity: 0.3}
	cfg := evt.Config{Epsilon: 0.001, MaxHyperSamples: 8}
	var units int
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		src, err := vectorgen.NewStreamSource(power.NewEvaluator(circuit, model, power.Params{}), gen)
		if err != nil {
			runErr = err
			b.Skip()
			return
		}
		src.Workers = 1
		est, err := evt.New(src, cfg)
		if err != nil {
			runErr = err
			b.Skip()
			return
		}
		b.ReportAllocs()
		// Cycle through a fixed seed set so ns/op is the mean over the
		// same runs whatever iteration count the harness settles on
		// (low seeds do full-length 8-hyper-sample runs; see
		// bench_test.go's protocol note).
		for i := 0; i < b.N; i++ {
			res := est.Run(stats.NewRNG(uint64(i%iterations) + 1))
			units = res.Units
		}
	})
	if runErr != nil {
		return Variant{}, runErr
	}
	ns := r.NsPerOp()
	return Variant{
		Circuit:     name,
		Model:       model.Name(),
		NsPerOp:     ns,
		MsPerOp:     float64(ns) / 1e6,
		Units:       units,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchstream:", err)
	os.Exit(1)
}
