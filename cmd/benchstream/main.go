// Command benchstream measures the streaming-estimation hot path — the
// cost of one full estimator run with on-demand simulation — and emits a
// machine-readable JSON baseline (BENCH_streaming.json). CI runs it on
// every push and uploads the file as an artifact, so regressions in the
// lane-packed simulators show up as a diffable number instead of a vague
// "feels slower".
//
// Usage:
//
//	benchstream                      # all circuit × delay-model × engine variants
//	benchstream -circuits C432       # subset
//	benchstream -iterations 3        # runs per timed block (fixed seed set)
//	benchstream -reps 5              # interleaved blocks per variant (report the min)
//	benchstream -o BENCH_streaming.json
//	benchstream -check BENCH_streaming.json   # regression gate (no output file)
//	benchstream -cpuprofile cpu.pprof        # pprof the whole sweep
//	benchstream -memprofile mem.pprof        # heap profile at exit
//
// Protocol: each variant pins the estimator to 8 hyper-samples at
// ε = 0.001 (the BenchmarkEstimateStreaming configuration), single
// worker, so the number is the single-core cost of the lane-packed
// engines — comparable across commits on the same machine, not across
// machines. Every circuit × delay-model pair is measured on three
// engines: "batched" (the interpreted packed-vector pipeline),
// "compiled" (the flat striped event wheel), and "speculative"
// (settle-then-patch, the library default), the compiled engines
// sharing one program cache the way the service does.
//
// Timing is interleaved min-of-reps: all engines of a pair are built
// first, then -reps timed blocks of -iterations runs each alternate
// round-robin between the engines, and ns_per_run is the fastest
// block's mean. Interleaving keeps a host frequency or scheduling
// swing from landing entirely on one engine (which would skew the
// cross-engine ratios the baseline exists to track), and the min is
// the stable summary of a noisy host — the runs are bit-identical, so
// the fastest observation is the one closest to the machine's true
// cost. Every engine runs the same fixed seed set, so blocks are the
// same work everywhere: engine columns are directly comparable.
// Allocation figures (allocs_per_run, bytes_per_run) come from a
// separate counted pass after one untimed warm-up run, so they are
// steady state — lazily built executor scratch is excluded, keeping
// bytes comparable across engines. Speculative variants also record
// the speculation counters of one run (stripes, patched words, wheel
// fallbacks).
//
// -check gates on two axes against the committed baseline:
//   - bytes_per_run: allocation volume is a property of the code and
//     comparable across machines; >25% growth fails.
//   - ns_per_run: wall time is machine-dependent, so the gate is
//     deliberately loose (>60% growth with an absolute floor) and the
//     baseline must be refreshed whenever the reference machine
//     changes; it exists to catch order-of-magnitude kernel
//     regressions, not single-digit drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/delay"
	"repro/internal/evt"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vectorgen"
)

// Variant is one measured configuration. Engine is "batched" or
// "compiled"; older baselines predate the field, and an empty value
// reads as "batched" for gating.
type Variant struct {
	Circuit     string  `json:"circuit"`
	Model       string  `json:"delay_model"`
	Engine      string  `json:"engine,omitempty"`
	NsPerOp     int64   `json:"ns_per_run"`
	MsPerOp     float64 `json:"ms_per_run"`
	Units       int     `json:"units_per_run"`
	AllocsPerOp int64   `json:"allocs_per_run"`
	BytesPerOp  int64   `json:"bytes_per_run"`
	// Speculation counters of one estimator run (speculative engine
	// only): timed stripes attempted, gate-words patched, stripes
	// replayed on the event wheel after a misprediction.
	SpecStripes   uint64 `json:"spec_stripes,omitempty"`
	SpecPatched   uint64 `json:"spec_patched_words,omitempty"`
	SpecFallbacks uint64 `json:"spec_fallbacks,omitempty"`
}

// key identifies a variant across baseline generations: an absent
// engine field (pre-compiled-kernel baselines) gates the batched
// engine.
func (v Variant) key() string {
	eng := v.Engine
	if eng == "" {
		eng = "batched"
	}
	return v.Circuit + "/" + v.Model + "/" + eng
}

// Baseline is the emitted document.
type Baseline struct {
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	NumCPU     int       `json:"num_cpu"`
	Timestamp  time.Time `json:"timestamp"`
	Iterations int       `json:"iterations_per_variant"`
	Reps       int       `json:"reps_per_variant,omitempty"`
	Variants   []Variant `json:"variants"`
}

func main() {
	var (
		circuits   = flag.String("circuits", "C432,C3540", "comma-separated benchmark circuits")
		iterations = flag.Int("iterations", 3, "estimator runs per timed block (fixed seed set)")
		reps       = flag.Int("reps", 7, "interleaved timed blocks per variant; ns_per_run is the fastest block")
		out        = flag.String("o", "BENCH_streaming.json", "output file (- for stdout)")
		check      = flag.String("check", "", "baseline file to gate against (fails if bytes_per_run grows >25% or ns_per_run >60%); suppresses output file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file before exiting")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	base := Baseline{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().UTC(),
		Iterations: *iterations,
		Reps:       *reps,
	}
	models := []delay.Model{delay.Zero{}, delay.FanoutLoaded{}, delay.StandardTable()}
	engines := []string{"batched", "compiled", "speculative"}
	// One program cache for the whole sweep, shared the way the service
	// shares its kernel cache: each (circuit, model) compiles once and
	// every iteration after that hits.
	kernels := sim.NewProgramCache(16)
	for _, name := range strings.Split(*circuits, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, err := bench.Generate(name)
		if err != nil {
			fatal(err)
		}
		for _, model := range models {
			vs, err := measure(name, c.NumInputs(), model, engines, *iterations, *reps, kernels)
			if err != nil {
				fatal(err)
			}
			for _, v := range vs {
				fmt.Fprintf(os.Stderr, "%-8s %-14s %-9s %8.1f ms/run %10d B/run %6d allocs/run (%d units)\n",
					v.Circuit, v.Model, v.Engine, v.MsPerOp, v.BytesPerOp, v.AllocsPerOp, v.Units)
				base.Variants = append(base.Variants, v)
			}
		}
	}

	if *check != "" {
		if err := checkAgainst(*check, base.Variants); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "benchstream: allocation and wall-time budgets hold against", *check)
		return
	}

	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// checkAgainst compares measured variants with the committed baseline
// and errors on regressions. bytes_per_run is gated at >25% growth
// (with a small absolute floor so near-zero baselines don't trip on
// kilobyte noise) — allocation volume is a property of the code.
// ns_per_run is gated at >60% growth with a 5 ms absolute floor:
// wall time IS machine-dependent, so the gate is only meaningful when
// the baseline was refreshed on the reference machine, and it is
// deliberately loose — it catches a kernel falling off a performance
// cliff, not single-digit drift. Variants with no baseline entry (new
// engines, new circuits) pass.
func checkAgainst(path string, got []Variant) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want Baseline
	if err := json.Unmarshal(raw, &want); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	ref := make(map[string]Variant, len(want.Variants))
	for _, v := range want.Variants {
		ref[v.key()] = v
	}
	const (
		growLimit = 1.25
		// Wall time gets a wider budget than bytes: allocation counts
		// are exact, but absolute ns compare across processes — and the
		// host's sustained clock drifts ±35% between runs, which the
		// interleaved min-of-reps protocol cancels within a process but
		// cannot cancel against a committed baseline. The gate exists to
		// catch step regressions (an engine falling off its fast path is
		// ≥2×), not mood swings.
		nsGrowLimit = 1.6
		minGrowthB  = 4 << 10   // ignore regressions under 4 KiB/run (seed-set jitter)
		minGrowthNS = 5_000_000 // ignore regressions under 5 ms/run (scheduler noise)
	)
	var bad []string
	for _, v := range got {
		w, ok := ref[v.key()]
		if !ok {
			continue // new variant: no baseline yet
		}
		limit := int64(float64(w.BytesPerOp) * growLimit)
		if floor := w.BytesPerOp + minGrowthB; limit < floor {
			limit = floor
		}
		if v.BytesPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s: %d B/run vs baseline %d (limit %d)",
				v.key(), v.BytesPerOp, w.BytesPerOp, limit))
		}
		nsLimit := int64(float64(w.NsPerOp) * nsGrowLimit)
		if floor := w.NsPerOp + minGrowthNS; nsLimit < floor {
			nsLimit = floor
		}
		if v.NsPerOp > nsLimit {
			bad = append(bad, fmt.Sprintf("%s: %.1f ms/run vs baseline %.1f (limit %.1f)",
				v.key(), float64(v.NsPerOp)/1e6, float64(w.NsPerOp)/1e6, float64(nsLimit)/1e6))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// measure times complete single-worker estimator runs of the
// BenchmarkEstimateStreaming configuration for every engine of one
// circuit × model pair. All engines are built first; then timed blocks
// of `iterations` runs (seeds 1..iterations) alternate round-robin
// between the engines for `reps` passes, and each engine reports its
// fastest block — see the package comment for why interleaved
// min-of-reps is the protocol. Allocations are counted separately over
// one fixed post-warm-up pass, outside any timed block.
func measure(name string, inputs int, model delay.Model, engines []string, iterations, reps int, kernels *sim.ProgramCache) ([]Variant, error) {
	circuit, err := bench.Generate(name)
	if err != nil {
		return nil, err
	}
	gen := vectorgen.HighActivity{N: inputs, MinActivity: 0.3}
	cfg := evt.Config{Epsilon: 0.001, MaxHyperSamples: 8}
	type engineRun struct {
		est *evt.Estimator
		v   Variant
	}
	runs := make([]*engineRun, 0, len(engines))
	for _, engine := range engines {
		ev := power.NewEvaluator(circuit, model, power.Params{})
		switch engine {
		case "compiled":
			ev.UseKernels(kernels, name+"/"+model.Name())
		case "speculative":
			ev.UseSpeculative(kernels, name+"/"+model.Name())
		}
		src, err := vectorgen.NewStreamSource(ev, gen)
		if err != nil {
			return nil, err
		}
		src.Workers = 1
		est, err := evt.New(src, cfg)
		if err != nil {
			return nil, err
		}
		er := &engineRun{est: est, v: Variant{Circuit: name, Model: model.Name(), Engine: engine}}
		// One untimed pass over the full seed set builds the lazily
		// constructed engine state (packed buffers, compiled executors,
		// scratch sized for the largest run any seed produces), so both
		// the counted allocation pass and the timed blocks are steady
		// state.
		res := est.Run(stats.NewRNG(1))
		er.v.Units = res.Units
		er.v.SpecStripes = res.Engine.SpecStripes
		er.v.SpecPatched = res.Engine.SpecPatched
		er.v.SpecFallbacks = res.Engine.SpecFallbacks
		for i := 1; i < iterations; i++ {
			est.Run(stats.NewRNG(uint64(i) + 1))
		}
		// Counted allocation pass: TotalAlloc/Mallocs are monotonic, so
		// the deltas are exact whatever the GC does in between.
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < iterations; i++ {
			est.Run(stats.NewRNG(uint64(i) + 1))
		}
		runtime.ReadMemStats(&m1)
		er.v.AllocsPerOp = int64(m1.Mallocs-m0.Mallocs) / int64(iterations)
		er.v.BytesPerOp = int64(m1.TotalAlloc-m0.TotalAlloc) / int64(iterations)
		runs = append(runs, er)
	}
	for rep := 0; rep < reps; rep++ {
		for _, er := range runs {
			t0 := time.Now()
			for i := 0; i < iterations; i++ {
				er.est.Run(stats.NewRNG(uint64(i) + 1))
			}
			per := time.Since(t0).Nanoseconds() / int64(iterations)
			if er.v.NsPerOp == 0 || per < er.v.NsPerOp {
				er.v.NsPerOp = per
			}
		}
	}
	vs := make([]Variant, len(runs))
	for i, er := range runs {
		er.v.MsPerOp = float64(er.v.NsPerOp) / 1e6
		vs[i] = er.v
	}
	return vs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchstream:", err)
	os.Exit(1)
}
