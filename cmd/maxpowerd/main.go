// Command maxpowerd serves maximum-power estimation over HTTP: jobs go
// in as JSON (POST /v1/jobs), run asynchronously on a bounded worker
// pool, and report progress (GET /v1/jobs/{id}) and final results
// (GET /v1/jobs/{id}/result). Parsed circuits and built populations are
// reused across jobs through an LRU cache; process counters are on
// /debug/vars.
//
// With -data the daemon is crash-safe: every job transition and
// per-hyper-sample checkpoint is journaled (fsync'd) to
// <dir>/journal.jsonl, and a restarted daemon replays the journal —
// finished jobs come back with their results, interrupted jobs resume
// from their last checkpoint and converge to bit-identical estimates.
//
// With -coordinator the daemon fronts a fleet: submitted jobs are split
// into fixed-size shards of hyper-samples, fanned out to the listed
// worker daemons (their /v1/shards API), retried around failed or dead
// workers, and merged into a result bit-identical to a single-node run
// with the same shard plan. Every daemon serves /v1/shards, so any
// instance can be a worker. Shard retries space out with capped
// jittered exponential backoff (-retry-backoff/-retry-backoff-max),
// and per-worker circuit breakers (-breaker-failures/-breaker-cooldown)
// plus periodic health probes (-health-interval) evict dead workers
// from rotation until they recover.
//
// With -tenants-file the daemon is multi-tenant: the file is a JSON
// array of tenants ({"name","key","weight","submit_rate","submit_burst",
// "units_rate","units_burst","queue_depth"}), job routes require the
// tenant's API key (Authorization: Bearer or X-API-Key), submissions
// are rate-limited and quota'd per tenant (429 + Retry-After), and the
// worker pool is shared by weighted-fair scheduling with priority
// classes (options.priority: batch/normal/interactive) — one tenant's
// backlog cannot starve another's jobs. Without the flag the daemon
// runs exactly as before: anonymous, unauthenticated, FIFO-fair.
//
// Usage:
//
//	maxpowerd [-addr :8321] [-workers 4] [-queue 64] [-cache 16]
//	          [-sim-workers 0] [-drain 30s] [-data DIR]
//	          [-max-job-duration 0] [-retain-jobs 512] [-retain-ttl 1h]
//	          [-pprof-addr 127.0.0.1:8322]
//	          [-coordinator http://w1:8321,http://w2:8321]
//	          [-shard-size 8] [-shard-timeout 0]
//	          [-retry-backoff 25ms] [-retry-backoff-max 2s]
//	          [-breaker-failures 3] [-breaker-cooldown 5s]
//	          [-health-interval 5s]
//	          [-tenants-file tenants.json] [-tenant-queue 0]
//
// -pprof-addr starts a SECOND listener serving net/http/pprof (CPU and
// heap profiles, goroutine dumps). It is off by default and never shares
// the API listener, so profiling endpoints are only reachable where the
// operator explicitly binds them (keep it on loopback).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8321", "listen address")
		workers    = flag.Int("workers", 0, "concurrent estimation jobs (0 = NumCPU capped at 8)")
		queue      = flag.Int("queue", 64, "max queued jobs before 503")
		cacheSize  = flag.Int("cache", 16, "population LRU capacity (entries)")
		simWorkers = flag.Int("sim-workers", 0, "per-job simulation parallelism (0 = NumCPU)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for running jobs")
		dataDir    = flag.String("data", "", "data directory for the durable job journal (empty = in-memory only)")
		maxJobDur  = flag.Duration("max-job-duration", 0, "wall-time cap per job; jobs keep their partial estimate (0 = unlimited)")
		retainJobs = flag.Int("retain-jobs", 0, "max finished jobs kept in the table (0 = default 512, -1 = unlimited)")
		retainTTL  = flag.Duration("retain-ttl", 0, "finished-job retention TTL (0 = default 1h, -1ns or any negative = no TTL)")
		pprofAddr  = flag.String("pprof-addr", "", "listen address for the net/http/pprof profiling listener (empty = disabled)")
		coord      = flag.String("coordinator", "", "comma-separated worker base URLs; when set, jobs are sharded across this fleet instead of running locally")
		shardSize  = flag.Int("shard-size", 0, "hyper-samples per fleet shard in coordinator mode (0 = default 8)")
		shardTO    = flag.Duration("shard-timeout", 0, "per-attempt wall-time cap for a dispatched shard; exceeded shards retry on another worker (0 = unlimited)")
		retryBase  = flag.Duration("retry-backoff", 0, "base delay for jittered exponential shard-retry backoff (0 = default 25ms, negative = disabled)")
		retryMax   = flag.Duration("retry-backoff-max", 0, "cap on the shard-retry backoff (0 = default 2s)")
		brkFails   = flag.Int("breaker-failures", 0, "consecutive failures that evict a fleet worker from rotation (0 = default 3)")
		brkCool    = flag.Duration("breaker-cooldown", 0, "how long an evicted fleet worker waits before a half-open probe (0 = default 5s)")
		healthIntv = flag.Duration("health-interval", 0, "fleet worker health-probe period in coordinator mode (0 = default 5s, negative = disabled)")
		tenantFile = flag.String("tenants-file", "", "JSON array of tenants; enables API-key auth, per-tenant rate limits, and weighted-fair scheduling (empty = anonymous single-tenant mode)")
		tenantQ    = flag.Int("tenant-queue", 0, "per-tenant queued-job bound (0 = only the global -queue bound)")
	)
	flag.Parse()

	var fleetWorkers []string
	if *coord != "" {
		for _, w := range strings.Split(*coord, ",") {
			if w = strings.TrimSpace(w); w != "" {
				fleetWorkers = append(fleetWorkers, w)
			}
		}
		if len(fleetWorkers) == 0 {
			log.Fatalf("-coordinator: no worker URLs in %q", *coord)
		}
	}

	var tenants []service.TenantConfig
	if *tenantFile != "" {
		var err error
		if tenants, err = service.LoadTenantsFile(*tenantFile); err != nil {
			log.Fatalf("%v", err)
		}
	}

	backoff := fleet.Backoff{Base: *retryBase, Max: *retryMax}
	if *retryBase < 0 {
		backoff = fleet.Backoff{Disabled: true}
	}

	mgr, err := service.NewManager(service.ManagerConfig{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *cacheSize,
		SimWorkers:       *simWorkers,
		DataDir:          *dataDir,
		MaxJobDuration:   *maxJobDur,
		RetainJobs:       *retainJobs,
		RetainFor:        *retainTTL,
		FleetWorkers:     fleetWorkers,
		ShardSize:        *shardSize,
		ShardTimeout:     *shardTO,
		RetryBackoff:     backoff,
		BreakerThreshold: *brkFails,
		BreakerCooldown:  *brkCool,
		HealthInterval:   *healthIntv,
		Tenants:          tenants,
		TenantQueueDepth: *tenantQ,
	})
	if err != nil {
		log.Fatalf("manager: %v", err)
	}
	mgr.OnProgress = func(id string, p service.Progress) {
		log.Printf("%s: k=%d estimate=%.3f mW relerr=%.4f units=%d",
			id, p.HyperSamples, p.Estimate, p.RelErr, p.Units)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: service.NewServer(mgr),
		// Edge protection: a stalled or malicious client cannot hold a
		// connection (and its goroutine) open indefinitely. Handlers are
		// all fast — jobs run asynchronously — so tight caps are safe.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("maxpowerd listening on %s", *addr)
	if *pprofAddr != "" {
		// Profiling rides a dedicated listener with an explicit mux: the
		// pprof handlers never touch the API server or DefaultServeMux, so
		// enabling them cannot widen the API surface. No write timeout —
		// CPU profiles stream for their full -seconds duration.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := pprofSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof listener: %v", err)
			}
		}()
		defer pprofSrv.Close()
		log.Printf("pprof listening on %s", *pprofAddr)
	}
	if *dataDir != "" {
		log.Printf("journaling to %s", *dataDir)
	}
	if len(fleetWorkers) > 0 {
		log.Printf("coordinating a fleet of %d workers: %s", len(fleetWorkers), strings.Join(fleetWorkers, ", "))
	}
	if len(tenants) > 0 {
		log.Printf("multi-tenant mode: %d tenants from %s", len(tenants), *tenantFile)
	}

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining jobs (budget %s)…", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := mgr.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("job drain incomplete: %v (running jobs were cancelled)", err)
	}
	log.Printf("bye")
}
