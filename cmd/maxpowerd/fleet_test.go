package main

import (
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/maxpower"
)

// TestFleetProcesses is the full-stack fleet drill: build the real
// maxpowerd binary, run two of them as workers plus one as coordinator
// (-coordinator), submit a C432 job that the coordinator shards four
// ways across the workers, and require the merged result to be
// bit-identical to a direct library run with the same shard plan.
func TestFleetProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("binary integration test; skipped in -short")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "maxpowerd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build maxpowerd: %v\n%s", err, out)
	}

	// Two worker daemons, each a plain instance serving /v1/shards.
	w1 := freeAddr(t)
	w2 := freeAddr(t)
	for _, addr := range []string{w1, w2} {
		d := launchArgs(t, bin, addr)
		defer stopDaemon(d)
	}

	// The coordinator: shard-size 6 over 24 hyper-samples → 4 shards.
	coordAddr := freeAddr(t)
	coord := launchArgs(t, bin, coordAddr,
		"-coordinator", "http://"+w1+",http://"+w2, "-shard-size", "6")
	defer stopDaemon(coord)
	base := "http://" + coordAddr

	jobBody := map[string]any{
		"circuit":    "C432",
		"population": map[string]any{"size": 2000, "seed": 5},
		"options": map[string]any{
			"seed": 13, "epsilon": 0.03, "max_hyper_samples": 24,
		},
	}
	var submitted struct {
		ID string `json:"id"`
	}
	postJSON(t, base+"/v1/jobs", jobBody, &submitted)
	if submitted.ID == "" {
		t.Fatal("no job id returned")
	}

	st := waitState(t, base, submitted.ID)
	if st.State != "done" {
		t.Fatalf("fleet job state = %s (%s), want done", st.State, st.Error)
	}

	var res struct {
		Estimate     float64 `json:"estimate_mw"`
		CILow        float64 `json:"ci_low_mw"`
		CIHigh       float64 `json:"ci_high_mw"`
		RelErr       float64 `json:"rel_err"`
		HyperSamples int     `json:"hyper_samples"`
		Units        int     `json:"units_simulated"`
		Converged    bool    `json:"converged"`
		ObservedMax  float64 `json:"observed_max_mw"`
		SigmaSq      float64 `json:"sigma_sq"`
	}
	getJSON(t, base+"/v1/jobs/"+submitted.ID+"/result", &res)

	// The same workload and shard plan straight through the library.
	c, err := maxpower.Circuit("C432")
	if err != nil {
		t.Fatal(err)
	}
	pop, err := maxpower.BuildPopulation(c, maxpower.PopulationSpec{Size: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := maxpower.EstimateDistributed(pop,
		maxpower.EstimateOptions{Seed: 13, Epsilon: 0.03, MaxHyperSamples: 24},
		maxpower.DistributedOptions{ShardSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Converged {
		t.Fatal("fixture no longer converges; recalibrate epsilon/seed")
	}
	if res.Estimate != direct.Estimate || res.CILow != direct.CILow || res.CIHigh != direct.CIHigh ||
		res.RelErr != direct.RelErr || res.HyperSamples != direct.HyperSamples ||
		res.Units != direct.Units || res.Converged != direct.Converged ||
		res.ObservedMax != direct.ObservedMax || res.SigmaSq != direct.SigmaSq {
		t.Errorf("fleet result diverged from direct sharded run:\n  fleet  %+v\n  direct estimate=%v ci=[%v,%v] relerr=%v k=%d units=%d converged=%v max=%v sigsq=%v",
			res, direct.Estimate, direct.CILow, direct.CIHigh, direct.RelErr,
			direct.HyperSamples, direct.Units, direct.Converged, direct.ObservedMax, direct.SigmaSq)
	}

	// The workers actually did the shards: worker-side executions across
	// the two daemons cover the whole plan, and the coordinator reports
	// its dispatches.
	var totalExecuted int64
	for _, addr := range []string{w1, w2} {
		var ws struct {
			ShardsExecuted int64 `json:"shards_executed"`
		}
		getJSON(t, "http://"+addr+"/v1/stats", &ws)
		totalExecuted += ws.ShardsExecuted
	}
	if totalExecuted == 0 {
		t.Error("no worker executed any shard")
	}
	var cs struct {
		Dispatched int64 `json:"fleet_shards_dispatched"`
	}
	getJSON(t, base+"/v1/stats", &cs)
	if cs.Dispatched == 0 {
		t.Error("coordinator reports zero shard dispatches")
	}
}

// launchArgs starts a daemon with extra flags and waits for /healthz.
func launchArgs(t *testing.T, bin, addr string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-addr", addr, "-workers", "2"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("daemon never became healthy")
	return nil
}

func stopDaemon(cmd *exec.Cmd) {
	cmd.Process.Signal(syscall.SIGTERM)
	cmd.Wait()
}
