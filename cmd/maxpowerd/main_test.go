package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/maxpower"
)

// TestKillRestartRecovery is the full-stack crash drill: build the real
// maxpowerd binary, run it with a journal, SIGKILL it (no cleanup
// whatsoever) in the middle of an estimation job, relaunch it over the
// same data dir, and require the job to finish with results
// bit-identical to a direct library run of the same workload.
func TestKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("binary integration test; skipped in -short")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "maxpowerd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build maxpowerd: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")
	addr := freeAddr(t)
	base := "http://" + addr

	daemon := launch(t, bin, addr, dataDir)

	// A deterministic job long enough to die in the middle of: ε is
	// unreachable, so it always runs the full pinned 400 hyper-samples.
	jobBody := map[string]any{
		"circuit":    "C432",
		"population": map[string]any{"size": 2000, "seed": 5},
		"options": map[string]any{
			"seed": 13, "epsilon": 0.0001, "max_hyper_samples": 400,
		},
	}
	var submitted struct {
		ID string `json:"id"`
	}
	postJSON(t, base+"/v1/jobs", jobBody, &submitted)
	if submitted.ID == "" {
		t.Fatal("no job id returned")
	}

	// Kill -9 once at least 3 hyper-samples are checkpointed.
	waitProgress(t, base, submitted.ID, 3)
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()

	relaunched := launch(t, bin, addr, dataDir)
	defer func() {
		relaunched.Process.Signal(syscall.SIGTERM)
		relaunched.Wait()
	}()

	st := waitState(t, base, submitted.ID)
	if st.State != "done" {
		t.Fatalf("recovered job state = %s (%s), want done", st.State, st.Error)
	}

	var res struct {
		Estimate     float64 `json:"estimate_mw"`
		CILow        float64 `json:"ci_low_mw"`
		CIHigh       float64 `json:"ci_high_mw"`
		RelErr       float64 `json:"rel_err"`
		HyperSamples int     `json:"hyper_samples"`
		Units        int     `json:"units_simulated"`
		Converged    bool    `json:"converged"`
		ObservedMax  float64 `json:"observed_max_mw"`
		SigmaSq      float64 `json:"sigma_sq"`
	}
	getJSON(t, base+"/v1/jobs/"+submitted.ID+"/result", &res)

	// The same workload straight through the library, uninterrupted.
	c, err := maxpower.Circuit("C432")
	if err != nil {
		t.Fatal(err)
	}
	pop, err := maxpower.BuildPopulation(c, maxpower.PopulationSpec{Size: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := maxpower.Estimate(pop, maxpower.EstimateOptions{Seed: 13, Epsilon: 0.0001, MaxHyperSamples: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != direct.Estimate || res.CILow != direct.CILow || res.CIHigh != direct.CIHigh ||
		res.RelErr != direct.RelErr || res.HyperSamples != direct.HyperSamples ||
		res.Units != direct.Units || res.Converged != direct.Converged ||
		res.ObservedMax != direct.ObservedMax || res.SigmaSq != direct.SigmaSq {
		t.Errorf("recovered result diverged from direct run:\n  daemon %+v\n  direct estimate=%v ci=[%v,%v] relerr=%v k=%d units=%d converged=%v max=%v sigsq=%v",
			res, direct.Estimate, direct.CILow, direct.CIHigh, direct.RelErr,
			direct.HyperSamples, direct.Units, direct.Converged, direct.ObservedMax, direct.SigmaSq)
	}

	// The restarted daemon reports the recovery in its stats.
	var stats struct {
		JobsRecovered int64 `json:"jobs_recovered"`
	}
	getJSON(t, base+"/v1/stats", &stats)
	if stats.JobsRecovered != 1 {
		t.Errorf("jobs_recovered = %d, want 1", stats.JobsRecovered)
	}
}

// launch starts the daemon and waits for /healthz.
func launch(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-data", dataDir, "-workers", "1")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("daemon never became healthy")
	return nil
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type jobState struct {
	State    string `json:"state"`
	Error    string `json:"error"`
	Progress *struct {
		HyperSamples int `json:"hyper_samples"`
	} `json:"progress"`
}

// waitProgress polls until the job reports at least k hyper-samples.
func waitProgress(t *testing.T, base, id string, k int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st jobState
		getJSON(t, base+"/v1/jobs/"+id, &st)
		if st.Progress != nil && st.Progress.HyperSamples >= k {
			return
		}
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job finished (%s) before it could be killed at k=%d", st.State, k)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job never reached %d hyper-samples", k)
}

// waitState polls until the job reaches a terminal state. Transient
// request errors are tolerated (the daemon may still be restarting).
func waitState(t *testing.T, base, id string) jobState {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err == nil {
			var st jobState
			dec := json.NewDecoder(resp.Body)
			derr := dec.Decode(&st)
			resp.Body.Close()
			if derr == nil && (st.State == "done" || st.State == "failed" || st.State == "cancelled") {
				return st
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state after restart")
	return jobState{}
}

func postJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST %s: %d, body %s", url, resp.StatusCode, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("GET %s: %d, body %s", url, resp.StatusCode, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
